//! Sense-number prediction (Step III-a).
//!
//! "The prediction of the sense number of a term falls directly in
//! clustering-based issues": cluster the term's contexts for every k in
//! [2, 5], score each solution with an internal index, keep the optimum.

use crate::indexes::InternalIndex;
use crate::solution::ClusterSolution;
use crate::Algorithm;
use boe_corpus::SparseVector;

/// Configuration for [`predict_k`].
#[derive(Debug, Clone, Copy)]
pub struct KPredictConfig {
    /// Inclusive k range; the paper restricts to (2, 5) following the
    /// UMLS polysemy statistics of Table 1.
    pub k_range: (usize, usize),
    /// Clustering method.
    pub algorithm: Algorithm,
    /// Scoring index.
    pub index: InternalIndex,
    /// Seed forwarded to the clustering method.
    pub seed: u64,
}

impl Default for KPredictConfig {
    fn default() -> Self {
        KPredictConfig {
            k_range: (2, 5),
            algorithm: Algorithm::Direct,
            index: InternalIndex::Fk,
            seed: 0,
        }
    }
}

/// Result of a k sweep.
#[derive(Debug, Clone)]
pub struct KPrediction {
    /// The chosen k.
    pub k: usize,
    /// `(k, score)` for every candidate (in ascending k).
    pub scores: Vec<(usize, f64)>,
    /// The winning solution.
    pub solution: ClusterSolution,
    /// Whether the swept range was narrowed from the requested one
    /// (because of a degenerate `k_range` or too few contexts) — callers
    /// surface this as a clamped-k warning.
    pub clamped: bool,
}

/// Predict the number of senses of a term from its context vectors.
/// Returns `None` when there are fewer than 2 contexts (no clustering
/// signal; the caller treats the term as monosemous).
///
/// A degenerate requested range (`lo < 2`, `lo > hi`) or a range wider
/// than the context count is clamped rather than rejected; the
/// prediction's `clamped` flag records that the sweep was narrowed.
pub fn predict_k(contexts: &[SparseVector], cfg: KPredictConfig) -> Option<KPrediction> {
    let (req_lo, req_hi) = cfg.k_range;
    if contexts.len() < 2 {
        return None;
    }
    let lo = req_lo.max(2);
    let hi = req_hi.max(lo).min(contexts.len());
    let lo = lo.min(hi);
    let clamped = (lo, hi) != (req_lo, req_hi);
    let mut best: Option<(usize, f64, ClusterSolution)> = None;
    let mut scores = Vec::with_capacity(hi - lo + 1);
    for k in lo..=hi {
        let sol = cfg.algorithm.cluster(contexts, k, cfg.seed ^ k as u64);
        let unit: Vec<SparseVector> = contexts.iter().map(SparseVector::normalized).collect();
        let s = cfg.index.score(&sol, &unit);
        scores.push((k, s));
        let better = match &best {
            None => true,
            Some((_, bs, _)) => {
                if cfg.index.maximize() {
                    s > *bs
                } else {
                    s < *bs
                }
            }
        };
        if better {
            best = Some((k, s, sol));
        }
    }
    // `lo <= hi` by construction, so the loop ran at least once.
    let (k, _, solution) = best?;
    Some(KPrediction {
        k,
        scores,
        solution,
        clamped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `k` orthogonal context blobs of `per` vectors each.
    fn blobs(per: usize, k: usize) -> Vec<SparseVector> {
        let mut vs = Vec::new();
        for c in 0..k as u32 {
            for i in 0..per as u32 {
                vs.push(SparseVector::from_pairs([
                    (c * 1000, 10.0),
                    (c * 1000 + 1 + i, 1.0),
                ]));
            }
        }
        vs
    }

    #[test]
    fn ek_recovers_true_k() {
        for true_k in 2..=5 {
            let vs = blobs(12, true_k);
            let pred = predict_k(
                &vs,
                KPredictConfig {
                    index: InternalIndex::Ek,
                    ..Default::default()
                },
            )
            .expect("enough contexts");
            assert_eq!(pred.k, true_k, "scores: {:?}", pred.scores);
        }
    }

    #[test]
    fn fk_recovers_two_sense_terms() {
        let vs = blobs(12, 2);
        let pred = predict_k(&vs, KPredictConfig::default()).expect("enough contexts");
        assert_eq!(pred.k, 2, "scores: {:?}", pred.scores);
    }

    /// The literal Table-2 `f_k = a_k / log10(k)` is biased toward k = 2:
    /// merging two of three equal orthogonal senses at most halves one
    /// cluster's ISIM (a_2 ≥ 0.75·a_3) while the log penalty ratio
    /// log10(3)/log10(2) ≈ 1.58 always outweighs it. This test pins that
    /// behaviour — EXPERIMENTS.md discusses the consequence for the
    /// paper's 93.1% claim.
    #[test]
    fn fk_is_biased_toward_two_on_balanced_senses() {
        let vs = blobs(12, 3);
        let pred = predict_k(&vs, KPredictConfig::default()).expect("enough contexts");
        assert_eq!(pred.k, 2, "scores: {:?}", pred.scores);
    }

    #[test]
    fn ek_recovers_true_k_across_algorithms() {
        for alg in Algorithm::ALL {
            let vs = blobs(10, 3);
            let pred = predict_k(
                &vs,
                KPredictConfig {
                    algorithm: alg,
                    index: InternalIndex::Ek,
                    ..Default::default()
                },
            )
            .expect("enough contexts");
            assert_eq!(pred.k, 3, "{alg}: {:?}", pred.scores);
        }
    }

    #[test]
    fn bk_minimization_direction() {
        let vs = blobs(10, 2);
        let pred = predict_k(
            &vs,
            KPredictConfig {
                index: InternalIndex::Bk,
                ..Default::default()
            },
        )
        .expect("enough contexts");
        // b_k is minimized; for orthogonal 2-blob data every k isolates
        // the blobs so ESIM stays ~0 — prediction must still be valid.
        assert!((2..=5).contains(&pred.k));
    }

    #[test]
    fn too_few_contexts_returns_none() {
        assert!(predict_k(&[], KPredictConfig::default()).is_none());
        let one = vec![SparseVector::from_pairs([(0, 1.0)])];
        assert!(predict_k(&one, KPredictConfig::default()).is_none());
    }

    #[test]
    fn k_range_clamps_to_object_count() {
        let vs = blobs(1, 3); // only 3 contexts
        let pred = predict_k(&vs, KPredictConfig::default()).expect("3 contexts");
        assert!(pred.k <= 3);
        assert_eq!(pred.scores.len(), 2); // k ∈ {2, 3}
        assert!(pred.clamped, "narrowed sweep must be flagged");
    }

    #[test]
    fn full_range_sweep_is_not_flagged_as_clamped() {
        let vs = blobs(10, 2);
        let pred = predict_k(&vs, KPredictConfig::default()).expect("enough");
        assert!(!pred.clamped);
    }

    #[test]
    fn degenerate_ranges_are_clamped_not_rejected() {
        let vs = blobs(10, 2);
        for k_range in [(0, 0), (1, 1), (5, 2), (2, 2)] {
            let pred = predict_k(
                &vs,
                KPredictConfig {
                    k_range,
                    ..Default::default()
                },
            )
            .expect("enough contexts");
            assert!(pred.k >= 2, "{k_range:?} gave k = {}", pred.k);
            assert!(!pred.scores.is_empty());
        }
    }

    #[test]
    fn scores_cover_requested_range() {
        let vs = blobs(10, 2);
        let pred = predict_k(&vs, KPredictConfig::default()).expect("enough");
        let ks: Vec<usize> = pred.scores.iter().map(|(k, _)| *k).collect();
        assert_eq!(ks, vec![2, 3, 4, 5]);
    }
}
