//! CLUTO's ISIM/ESIM cluster statistics.
//!
//! For unit vectors and cluster composite `D_i` of size `n_i` in a
//! collection of `N` objects with global composite `D`:
//!
//! * `ISIM_i = ||D_i||² / n_i²` — average pairwise similarity among the
//!   cluster's objects (ordered pairs, self included — CLUTO's ISim);
//! * `ESIM_i = D_i · (D − D_i) / (n_i (N − n_i))` — average similarity of
//!   the cluster's objects to everything outside (CLUTO's ESim).
//!
//! These are exactly the quantities the paper's Table-2 indexes combine.

use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;

/// Per-cluster ISIM/ESIM values plus sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// ISIM per cluster.
    pub isim: Vec<f64>,
    /// ESIM per cluster (0.0 when the cluster covers every object).
    pub esim: Vec<f64>,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
}

impl ClusterStats {
    /// Compute the statistics for `solution` over unit-normalized vectors.
    pub fn compute(solution: &ClusterSolution, unit: &[SparseVector]) -> Self {
        let comps = solution.composites(unit);
        let sizes = solution.sizes();
        let total = SparseVector::sum_of(&comps);
        let n = unit.len() as f64;
        let mut isim = Vec::with_capacity(comps.len());
        let mut esim = Vec::with_capacity(comps.len());
        for (d, &sz) in comps.iter().zip(&sizes) {
            let ni = sz as f64;
            isim.push((d.dot(d) / (ni * ni)).clamp(-1.0, 1.0));
            let outside = n - ni;
            if outside > 0.0 {
                let mut rest = total.clone();
                let mut neg = d.clone();
                neg.scale(-1.0);
                rest.add_assign(&neg);
                esim.push((d.dot(&rest) / (ni * outside)).clamp(-1.0, 1.0));
            } else {
                esim.push(0.0);
            }
        }
        ClusterStats { isim, esim, sizes }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.isim.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).normalized()
    }

    #[test]
    fn identical_cluster_has_isim_one() {
        let vs = vec![unit(&[(0, 1.0)]), unit(&[(0, 1.0)]), unit(&[(1, 1.0)])];
        let sol = ClusterSolution::new(vec![0, 0, 1], 2);
        let st = ClusterStats::compute(&sol, &vs);
        assert!((st.isim[0] - 1.0).abs() < 1e-12);
        assert!((st.isim[1] - 1.0).abs() < 1e-12, "singleton self-sim");
        assert_eq!(st.k(), 2);
    }

    #[test]
    fn orthogonal_clusters_have_zero_esim() {
        let vs = vec![unit(&[(0, 1.0)]), unit(&[(0, 1.0)]), unit(&[(1, 1.0)])];
        let sol = ClusterSolution::new(vec![0, 0, 1], 2);
        let st = ClusterStats::compute(&sol, &vs);
        assert!(st.esim[0].abs() < 1e-12);
        assert!(st.esim[1].abs() < 1e-12);
    }

    #[test]
    fn esim_matches_brute_force() {
        let vs = vec![
            unit(&[(0, 1.0), (1, 0.5)]),
            unit(&[(0, 1.0)]),
            unit(&[(1, 1.0)]),
            unit(&[(1, 1.0), (2, 0.3)]),
        ];
        let sol = ClusterSolution::new(vec![0, 0, 1, 1], 2);
        let st = ClusterStats::compute(&sol, &vs);
        // Brute force ESIM of cluster 0.
        let mut total = 0.0;
        for i in [0usize, 1] {
            for j in [2usize, 3] {
                total += vs[i].dot(&vs[j]);
            }
        }
        let expected = total / (2.0 * 2.0);
        assert!((st.esim[0] - expected).abs() < 1e-12);
        assert!(
            (st.esim[0] - st.esim[1]).abs() < 1e-12,
            "symmetric for 2 clusters of equal size"
        );
    }

    #[test]
    fn isim_matches_brute_force() {
        let vs = vec![
            unit(&[(0, 1.0), (1, 0.5)]),
            unit(&[(0, 1.0)]),
            unit(&[(0, 0.2), (1, 1.0)]),
        ];
        let sol = ClusterSolution::new(vec![0, 0, 0], 1);
        let st = ClusterStats::compute(&sol, &vs);
        let mut total = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                total += vs[i].dot(&vs[j]);
            }
        }
        assert!((st.isim[0] - total / 9.0).abs() < 1e-12);
        assert_eq!(st.esim[0], 0.0, "single cluster has no outside");
    }

    #[test]
    fn tight_clusters_beat_loose_on_isim() {
        let tight = vec![unit(&[(0, 1.0)]), unit(&[(0, 1.0)])];
        let loose = vec![unit(&[(0, 1.0)]), unit(&[(1, 1.0)])];
        let s_tight = ClusterStats::compute(&ClusterSolution::new(vec![0, 0], 1), &tight);
        let s_loose = ClusterStats::compute(&ClusterSolution::new(vec![0, 0], 1), &loose);
        assert!(s_tight.isim[0] > s_loose.isim[0]);
    }
}
