//! Repeated bisection (`rb`) and its refined variant (`rbr`).
//!
//! CLUTO's `rb` grows a k-way solution by repeatedly 2-way splitting the
//! cluster whose split most improves the I2 criterion (we split the
//! cluster with the largest size × (1 − tightness) payoff, then keep the
//! split only if it helps). `rbr` runs the same process and then refines
//! the k-way result with spherical k-means iterations seeded from it.

use crate::kmeans;
use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;
use boe_rng::StdRng;

/// Repeated bisection into `k` clusters over unit vectors. With
/// `refine = true` this is `rbr`.
pub fn repeated_bisection(
    unit: &[SparseVector],
    k: usize,
    seed: u64,
    refine: bool,
) -> ClusterSolution {
    let n = unit.len();
    assert!(k >= 1 && k <= n);
    let mut assignments = vec![0usize; n];
    let mut current_k = 1usize;
    let mut rng = StdRng::seed_from_u64(seed);
    while current_k < k {
        // Pick the cluster to split: largest aggregate "looseness"
        // n_c × (1 − avg pairwise similarity); only clusters with ≥ 2
        // objects are splittable.
        let mut comps = vec![SparseVector::new(); current_k];
        let mut sizes = vec![0usize; current_k];
        for (v, &a) in unit.iter().zip(&assignments) {
            comps[a].add_assign(v);
            sizes[a] += 1;
        }
        let mut target = None;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..current_k {
            if sizes[c] < 2 {
                continue;
            }
            let tightness = crate::similarity::avg_pairwise_from_composite(&comps[c], sizes[c]);
            let score = sizes[c] as f64 * (1.0 - tightness) + 1e-9 * sizes[c] as f64;
            if score > best_score {
                best_score = score;
                target = Some(c);
            }
        }
        let target = target.expect("k <= n guarantees a splittable cluster");
        // 2-means on the members of `target`.
        let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == target).collect();
        let sub: Vec<SparseVector> = members.iter().map(|&i| unit[i].clone()).collect();
        let split = kmeans::spherical_kmeans(&sub, 2, rng.gen());
        let new_label = current_k;
        for (pos, &i) in members.iter().enumerate() {
            if split.assignment(pos) == 1 {
                assignments[i] = new_label;
            }
        }
        current_k += 1;
    }
    let rb = ClusterSolution::new(assignments, k);
    if refine {
        refine_kway(unit, rb)
    } else {
        rb
    }
}

/// k-way refinement: spherical k-means iterations seeded from `start`.
fn refine_kway(unit: &[SparseVector], start: ClusterSolution) -> ClusterSolution {
    let k = start.k();
    let n = unit.len();
    let mut assignments = start.assignments().to_vec();
    for _ in 0..50 {
        let mut comps = vec![SparseVector::new(); k];
        for (v, &a) in unit.iter().zip(&assignments) {
            comps[a].add_assign(v);
        }
        let centroids: Vec<SparseVector> = comps.into_iter().map(|c| c.normalized()).collect();
        // Per-object re-assignment is independent → chunked across
        // threads for large collections, identical to the serial scan.
        let next: Vec<usize> =
            boe_par::par_map_indexed_min(n, crate::kmeans::PAR_ASSIGN_MIN, |i| {
                let mut best = assignments[i];
                let mut best_s = f64::NEG_INFINITY;
                for (c, cent) in centroids.iter().enumerate() {
                    let s = unit[i].dot(cent);
                    if s > best_s {
                        best_s = s;
                        best = c;
                    }
                }
                best
            });
        let changed = next != assignments;
        // Reject refinement steps that empty a cluster (rbr must keep k).
        let mut sizes = vec![0usize; k];
        for &a in &next {
            sizes[a] += 1;
        }
        if sizes.contains(&0) {
            break;
        }
        assignments = next;
        if !changed {
            break;
        }
    }
    ClusterSolution::new(assignments, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize) -> (Vec<SparseVector>, Vec<usize>) {
        let mut vs = Vec::new();
        let mut gold = Vec::new();
        for c in 0..k as u32 {
            for i in 0..per as u32 {
                let v = SparseVector::from_pairs([(c * 100, 10.0), (c * 100 + 1 + i, 1.0)]);
                vs.push(v.normalized());
                gold.push(c as usize);
            }
        }
        (vs, gold)
    }

    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn rb_recovers_blobs() {
        let (vs, gold) = blobs(7, 4);
        let sol = repeated_bisection(&vs, 4, 1, false);
        assert_eq!(sol.k(), 4);
        assert!(rand_index(sol.assignments(), &gold) > 0.95);
    }

    #[test]
    fn rbr_is_at_least_as_good_on_i2() {
        let (vs, _) = blobs(6, 3);
        let rb = repeated_bisection(&vs, 3, 2, false);
        let rbr = repeated_bisection(&vs, 3, 2, true);
        let i2 = |s: &ClusterSolution| crate::similarity::i2(&s.composites(&vs));
        assert!(i2(&rbr) >= i2(&rb) - 1e-9);
    }

    #[test]
    fn k_one_is_trivial() {
        let (vs, _) = blobs(3, 2);
        let sol = repeated_bisection(&vs, 1, 0, false);
        assert_eq!(sol.sizes(), vec![6]);
    }

    #[test]
    fn k_equals_n_singletons() {
        let (vs, _) = blobs(2, 2);
        let sol = repeated_bisection(&vs, 4, 0, true);
        assert_eq!(sol.sizes(), vec![1; 4]);
    }

    #[test]
    fn deterministic() {
        let (vs, _) = blobs(5, 3);
        let a = repeated_bisection(&vs, 3, 9, true);
        let b = repeated_bisection(&vs, 3, 9, true);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn no_empty_clusters() {
        let (vs, _) = blobs(4, 3);
        for k in 1..=8 {
            let sol = repeated_bisection(&vs, k, 3, true);
            assert!(sol.sizes().iter().all(|&s| s > 0), "k = {k}");
        }
    }
}
