//! Spherical k-means — the `direct` method.
//!
//! Maximizes CLUTO's I2 criterion (`Σ_k ||composite_k||`) by alternating
//! cosine assignment and centroid renormalization, with farthest-first
//! seeding and deterministic tie-breaking.

use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;
use boe_rng::StdRng;

const MAX_ITERS: usize = 100;

/// Objects below which assignment stays serial (thread spawn ≫ work).
pub(crate) const PAR_ASSIGN_MIN: usize = 512;

/// Cluster unit-normalized `vectors` into `k` clusters.
///
/// Callers reach this through [`crate::Algorithm::cluster`], which
/// documents and enforces `1 <= k <= n`; out-of-range `k` is clamped
/// here so the invariant degrades instead of panicking.
pub fn spherical_kmeans(unit: &[SparseVector], k: usize, seed: u64) -> ClusterSolution {
    let n = unit.len();
    debug_assert!(k >= 1 && k <= n, "k = {k} out of range for n = {n}");
    let k = k.clamp(1, n.max(1));
    if k == 1 {
        return ClusterSolution::new(vec![0; n], 1);
    }
    if k == n {
        return ClusterSolution::new((0..n).collect(), n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = farthest_first_seeds(unit, k, &mut rng);
    let mut assignments = vec![usize::MAX; n];
    for _ in 0..MAX_ITERS {
        let new_assignments = assign(unit, &centroids);
        if new_assignments == assignments {
            break;
        }
        assignments = new_assignments;
        centroids = recompute_centroids(unit, &assignments, k);
        repair_empty_clusters(unit, &mut assignments, &mut centroids, k);
    }
    repair_empty_clusters(unit, &mut assignments, &mut centroids, k);
    ClusterSolution::new(assignments, k)
}

/// Farthest-first (k-means++ greedy flavour) seeding.
fn farthest_first_seeds(unit: &[SparseVector], k: usize, rng: &mut StdRng) -> Vec<SparseVector> {
    let n = unit.len();
    let first = rng.gen_range(0..n);
    let mut seeds = vec![unit[first].clone()];
    // max similarity of each object to the chosen seeds.
    let mut max_sim: Vec<f64> = unit.iter().map(|v| v.dot(&seeds[0])).collect();
    while seeds.len() < k {
        // Pick the object least similar to all current seeds.
        let (mut best_i, mut best_s) = (0usize, f64::INFINITY);
        for (i, &s) in max_sim.iter().enumerate() {
            if s < best_s {
                best_s = s;
                best_i = i;
            }
        }
        let newest = unit[best_i].clone();
        for (i, v) in unit.iter().enumerate() {
            let s = v.dot(&newest);
            if s > max_sim[i] {
                max_sim[i] = s;
            }
        }
        seeds.push(newest);
    }
    seeds
}

/// Assign each object to its most similar centroid (lowest index wins
/// ties). Each object's choice is independent, so the loop is chunked
/// across threads for large collections (results are in input order and
/// identical to the serial scan; below the threshold no threads spawn —
/// Step-III context sets are usually small and a spawn would cost more
/// than the dots).
fn assign(unit: &[SparseVector], centroids: &[SparseVector]) -> Vec<usize> {
    boe_par::par_map_min(unit, PAR_ASSIGN_MIN, |v| {
        let mut best = 0usize;
        let mut best_s = f64::NEG_INFINITY;
        for (c, cent) in centroids.iter().enumerate() {
            let s = v.dot(cent);
            if s > best_s {
                best_s = s;
                best = c;
            }
        }
        best
    })
}

fn recompute_centroids(
    unit: &[SparseVector],
    assignments: &[usize],
    k: usize,
) -> Vec<SparseVector> {
    let mut comps = vec![SparseVector::new(); k];
    for (v, &a) in unit.iter().zip(assignments) {
        comps[a].add_assign(v);
    }
    comps.into_iter().map(|c| c.normalized()).collect()
}

/// Give each empty cluster the object least similar to its current
/// centroid (stealing from clusters of size ≥ 2).
fn repair_empty_clusters(
    unit: &[SparseVector],
    assignments: &mut [usize],
    centroids: &mut [SparseVector],
    k: usize,
) {
    loop {
        let mut sizes = vec![0usize; k];
        for &a in assignments.iter() {
            sizes[a] += 1;
        }
        let Some(empty) = sizes.iter().position(|&s| s == 0) else {
            return;
        };
        // Steal the worst-fitting object from a multi-object cluster.
        let mut worst: Option<(usize, f64)> = None;
        for (i, v) in unit.iter().enumerate() {
            if sizes[assignments[i]] < 2 {
                continue;
            }
            let s = v.dot(&centroids[assignments[i]]);
            if worst.is_none_or(|(_, ws)| s < ws) {
                worst = Some((i, s));
            }
        }
        // `k <= n` guarantees a donor cluster of size >= 2 whenever some
        // cluster is empty; bail gracefully if that invariant is broken
        // upstream rather than panicking mid-repair.
        let Some((steal, _)) = worst else {
            return;
        };
        assignments[steal] = empty;
        let new_cents = recompute_centroids(unit, assignments, k);
        centroids.clone_from_slice(&new_cents);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight orthogonal blobs of unit vectors.
    fn blobs(per: usize) -> (Vec<SparseVector>, Vec<usize>) {
        let mut vs = Vec::new();
        let mut gold = Vec::new();
        for c in 0..3u32 {
            for i in 0..per as u32 {
                // Dominant dimension per blob + small member-specific dim.
                let v = SparseVector::from_pairs([(c * 100, 10.0), (c * 100 + 1 + i, 1.0)]);
                vs.push(v.normalized());
                gold.push(c as usize);
            }
        }
        (vs, gold)
    }

    /// Fraction of pairs on which two labelings agree (Rand index).
    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_orthogonal_blobs() {
        let (vs, gold) = blobs(8);
        let sol = spherical_kmeans(&vs, 3, 1);
        assert_eq!(sol.k(), 3);
        assert!(rand_index(sol.assignments(), &gold) > 0.99);
    }

    #[test]
    fn deterministic_per_seed() {
        let (vs, _) = blobs(6);
        let a = spherical_kmeans(&vs, 3, 5);
        let b = spherical_kmeans(&vs, 3, 5);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn k_equals_one_and_n() {
        let (vs, _) = blobs(2);
        let one = spherical_kmeans(&vs, 1, 0);
        assert_eq!(one.sizes(), vec![6]);
        let all = spherical_kmeans(&vs, 6, 0);
        assert_eq!(all.sizes(), vec![1; 6]);
    }

    #[test]
    fn no_empty_clusters_ever() {
        let (vs, _) = blobs(4);
        for k in 1..=vs.len() {
            let sol = spherical_kmeans(&vs, k, 3);
            assert!(sol.sizes().iter().all(|&s| s > 0), "k = {k}");
        }
    }

    #[test]
    fn identical_vectors_still_partition() {
        let vs: Vec<SparseVector> = (0..5)
            .map(|_| SparseVector::from_pairs([(0, 1.0)]))
            .collect();
        let sol = spherical_kmeans(&vs, 3, 7);
        assert_eq!(sol.k(), 3);
        assert!(sol.sizes().iter().all(|&s| s > 0));
    }
}
