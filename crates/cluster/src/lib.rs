//! # boe-cluster
//!
//! Clustering substrate — the from-scratch replacement for the CLUTO
//! toolkit the paper uses in Step III (sense induction):
//!
//! * [`solution`] — cluster assignments with invariant checking;
//! * [`similarity`] — the cosine kernel over unit-normalized sparse
//!   vectors and composite-vector identities;
//! * [`kmeans`] — `direct`: spherical k-means on the I2 criterion;
//! * [`bisect`] — `rb` (repeated bisection) and `rbr` (rb + k-way
//!   refinement);
//! * [`agglo`] — `agglo`: UPGMA agglomerative clustering;
//! * [`graphc`] — `graph`: kNN-graph based agglomerative partitioning;
//! * [`isim`] — CLUTO's ISIM/ESIM cluster statistics;
//! * [`indexes`] — the paper's five new internal indexes a_k, b_k, c_k,
//!   e_k, f_k (Table 2) plus silhouette / Calinski–Harabasz baselines;
//! * [`external`] — external indexes (purity, NMI, adjusted Rand) for
//!   gold-labelled sanity checks;
//! * [`kpredict`] — sense-number prediction: sweep k ∈ \[2,5\], score with
//!   an index, pick the optimum;
//! * [`features`] — top features per cluster (concept labelling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglo;
pub mod bisect;
pub mod external;
pub mod features;
pub mod graphc;
pub mod indexes;
pub mod isim;
pub mod kmeans;
pub mod kpredict;
pub mod similarity;
pub mod solution;

pub use indexes::InternalIndex;
pub use kpredict::{predict_k, KPredictConfig};
pub use solution::ClusterSolution;

use boe_corpus::SparseVector;

/// The five clustering methods the paper selects by their CLUTO names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Repeated bisection.
    Rb,
    /// Repeated bisection followed by k-way refinement.
    Rbr,
    /// Direct k-way spherical k-means.
    Direct,
    /// UPGMA agglomerative.
    Agglo,
    /// kNN-graph based partitioning.
    Graph,
}

impl Algorithm {
    /// All algorithms in the paper's order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Rb,
        Algorithm::Rbr,
        Algorithm::Direct,
        Algorithm::Agglo,
        Algorithm::Graph,
    ];

    /// The CLUTO method name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Rb => "rb",
            Algorithm::Rbr => "rbr",
            Algorithm::Direct => "direct",
            Algorithm::Agglo => "agglo",
            Algorithm::Graph => "graph",
        }
    }

    /// Cluster `vectors` into `k` clusters. Vectors need not be
    /// normalized; every method works on the unit sphere internally.
    ///
    /// ```
    /// use boe_cluster::Algorithm;
    /// use boe_corpus::SparseVector;
    ///
    /// let docs = vec![
    ///     SparseVector::from_pairs([(0, 1.0)]),
    ///     SparseVector::from_pairs([(0, 1.0), (1, 0.1)]),
    ///     SparseVector::from_pairs([(9, 1.0)]),
    ///     SparseVector::from_pairs([(9, 1.0), (8, 0.1)]),
    /// ];
    /// let solution = Algorithm::Direct.cluster(&docs, 2, 42);
    /// assert_eq!(solution.assignment(0), solution.assignment(1));
    /// assert_ne!(solution.assignment(0), solution.assignment(2));
    /// ```
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > vectors.len()`.
    pub fn cluster(self, vectors: &[SparseVector], k: usize, seed: u64) -> ClusterSolution {
        assert!(k >= 1, "k must be positive");
        assert!(
            k <= vectors.len(),
            "k = {k} exceeds object count {}",
            vectors.len()
        );
        let unit: Vec<SparseVector> = vectors.iter().map(SparseVector::normalized).collect();
        match self {
            Algorithm::Rb => bisect::repeated_bisection(&unit, k, seed, false),
            Algorithm::Rbr => bisect::repeated_bisection(&unit, k, seed, true),
            Algorithm::Direct => kmeans::spherical_kmeans(&unit, k, seed),
            Algorithm::Agglo => agglo::upgma(&unit, k),
            Algorithm::Graph => graphc::knn_graph_partition(&unit, k, 10),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_cluto_names() {
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["rb", "rbr", "direct", "agglo", "graph"]);
    }

    #[test]
    #[should_panic(expected = "exceeds object count")]
    fn k_larger_than_n_panics() {
        let v = vec![SparseVector::from_pairs([(0, 1.0)])];
        let _ = Algorithm::Direct.cluster(&v, 2, 0);
    }
}
