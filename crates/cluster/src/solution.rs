//! Cluster solutions.

use boe_corpus::SparseVector;

/// A partition of `n` objects into `k` clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSolution {
    assignments: Vec<usize>,
    k: usize,
}

impl ClusterSolution {
    /// Build from per-object cluster labels in `0..k`.
    ///
    /// # Panics
    /// Panics if any label is ≥ `k`, or if some cluster in `0..k` is empty
    /// (solutions produced by the algorithms in this crate never have
    /// empty clusters).
    pub fn new(assignments: Vec<usize>, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        let mut seen = vec![false; k];
        for &a in &assignments {
            assert!(a < k, "label {a} out of range for k = {k}");
            seen[a] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "empty cluster in solution with k = {k}"
        );
        ClusterSolution { assignments, k }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether there are no objects (never true for built solutions).
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Cluster label of object `i`.
    pub fn assignment(&self, i: usize) -> usize {
        self.assignments[i]
    }

    /// All labels.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Object indices of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Cluster sizes, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Composite (sum) vector per cluster.
    pub fn composites(&self, vectors: &[SparseVector]) -> Vec<SparseVector> {
        assert_eq!(vectors.len(), self.len(), "vector/assignment mismatch");
        let mut comps = vec![SparseVector::new(); self.k];
        for (v, &a) in vectors.iter().zip(&self.assignments) {
            comps[a].add_assign(v);
        }
        comps
    }

    /// Unit-normalized centroid per cluster.
    pub fn centroids(&self, vectors: &[SparseVector]) -> Vec<SparseVector> {
        self.composites(vectors)
            .into_iter()
            .map(|c| c.normalized())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = ClusterSolution::new(vec![0, 1, 0, 1, 1], 2);
        assert_eq!(s.k(), 2);
        assert_eq!(s.len(), 5);
        assert_eq!(s.sizes(), vec![2, 3]);
        assert_eq!(s.members(0), vec![0, 2]);
        assert_eq!(s.assignment(4), 1);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = ClusterSolution::new(vec![0, 2], 2);
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        let _ = ClusterSolution::new(vec![0, 0], 2);
    }

    #[test]
    fn composites_and_centroids() {
        let vs = vec![
            SparseVector::from_pairs([(0, 1.0)]),
            SparseVector::from_pairs([(0, 1.0)]),
            SparseVector::from_pairs([(1, 2.0)]),
        ];
        let s = ClusterSolution::new(vec![0, 0, 1], 2);
        let comps = s.composites(&vs);
        assert_eq!(comps[0].get(0), 2.0);
        assert_eq!(comps[1].get(1), 2.0);
        let cents = s.centroids(&vs);
        assert!((cents[0].norm() - 1.0).abs() < 1e-12);
        assert!((cents[1].norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn composite_length_mismatch_panics() {
        let s = ClusterSolution::new(vec![0], 1);
        let _ = s.composites(&[]);
    }
}
