//! Internal clustering-quality indexes.
//!
//! Implements the paper's **Table 2** — the five new internal indexes for
//! predicting the number of clusters — plus two classical baselines for
//! the ablation benches. Notation follows the paper: a clustering with k
//! clusters has per-cluster `ISIM_i`, `ESIM_i` and sizes `|S_i|`.
//!
//! | index | definition | optimum |
//! |-------|-----------|---------|
//! | `a_k` | `(Σ ISIM_i)/k` | max |
//! | `b_k` | `(Σ ESIM_i)/k` | min |
//! | `c_k` | `(1/k) Σ \|S_i\|·(ISIM_i − ESIM_i)` | max |
//! | `e_k` | `(Σ \|S_i\|·ISIM_i) / (Σ \|S_i\|·ESIM_i)` | max |
//! | `f_k` | `a_k / log10(k)` | max |
//!
//! (Table 2 prints `ESIM_k`/`ISIM_k` inside the c/e sums; we read those as
//! the per-cluster values `ESIM_i`/`ISIM_i`, the only interpretation under
//! which the sums are well-typed.)

use crate::isim::ClusterStats;
use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;

/// An internal index for scoring a clustering solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InternalIndex {
    /// Average of ISIM (`a_k`, maximize).
    Ak,
    /// Average of ESIM (`b_k`, minimize).
    Bk,
    /// Size-weighted average ISIM−ESIM gap (`c_k`, maximize).
    Ck,
    /// Ratio of size-weighted ISIM to size-weighted ESIM (`e_k`, maximize).
    Ek,
    /// `a_k` divided by `log10(k)` (`f_k`, maximize) — the index the paper
    /// reports as the best performer (93.1% accuracy).
    Fk,
    /// Silhouette coefficient with cosine distance (baseline, maximize).
    Silhouette,
    /// Calinski–Harabasz pseudo-F (baseline, maximize).
    CalinskiHarabasz,
}

impl InternalIndex {
    /// The paper's five indexes, in Table-2 order.
    pub const PAPER: [InternalIndex; 5] = [
        InternalIndex::Ak,
        InternalIndex::Bk,
        InternalIndex::Ck,
        InternalIndex::Ek,
        InternalIndex::Fk,
    ];

    /// All indexes including baselines.
    pub const ALL: [InternalIndex; 7] = [
        InternalIndex::Ak,
        InternalIndex::Bk,
        InternalIndex::Ck,
        InternalIndex::Ek,
        InternalIndex::Fk,
        InternalIndex::Silhouette,
        InternalIndex::CalinskiHarabasz,
    ];

    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            InternalIndex::Ak => "max(ak)",
            InternalIndex::Bk => "min(bk)",
            InternalIndex::Ck => "max(ck)",
            InternalIndex::Ek => "max(ek)",
            InternalIndex::Fk => "max(fk)",
            InternalIndex::Silhouette => "silhouette",
            InternalIndex::CalinskiHarabasz => "calinski-harabasz",
        }
    }

    /// Whether the best k *maximizes* the score (only `b_k` minimizes).
    pub fn maximize(self) -> bool {
        !matches!(self, InternalIndex::Bk)
    }

    /// Score `solution` over unit-normalized `unit` vectors.
    ///
    /// Total over degenerate input: `f_k` at `k = 1` (where `log10(k)`
    /// vanishes) reports the worst possible score, and any NaN arising
    /// from degenerate similarities is mapped to the worst score for the
    /// index's direction, so argmax/argmin sweeps stay well-defined.
    pub fn score(self, solution: &ClusterSolution, unit: &[SparseVector]) -> f64 {
        let s = self.raw_score(solution, unit);
        if s.is_nan() {
            if self.maximize() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        } else {
            s
        }
    }

    fn raw_score(self, solution: &ClusterSolution, unit: &[SparseVector]) -> f64 {
        let k = solution.k() as f64;
        match self {
            InternalIndex::Ak => {
                let st = ClusterStats::compute(solution, unit);
                st.isim.iter().sum::<f64>() / k
            }
            InternalIndex::Bk => {
                let st = ClusterStats::compute(solution, unit);
                st.esim.iter().sum::<f64>() / k
            }
            InternalIndex::Ck => {
                let st = ClusterStats::compute(solution, unit);
                st.isim
                    .iter()
                    .zip(&st.esim)
                    .zip(&st.sizes)
                    .map(|((i, e), &s)| s as f64 * (i - e))
                    .sum::<f64>()
                    / k
            }
            InternalIndex::Ek => {
                let st = ClusterStats::compute(solution, unit);
                let num: f64 = st
                    .isim
                    .iter()
                    .zip(&st.sizes)
                    .map(|(i, &s)| s as f64 * i)
                    .sum();
                let den: f64 = st
                    .esim
                    .iter()
                    .zip(&st.sizes)
                    .map(|(e, &s)| s as f64 * e)
                    .sum();
                if den.abs() < 1e-12 {
                    // Perfectly separated solution: report a large finite
                    // score so argmax comparisons stay total.
                    num * 1e12
                } else {
                    num / den
                }
            }
            InternalIndex::Fk => {
                if solution.k() < 2 {
                    // f_k = a_k / log10(k) is undefined at k = 1; report
                    // the worst score so any valid k beats it in a sweep.
                    return f64::NEG_INFINITY;
                }
                let ak = InternalIndex::Ak.score(solution, unit);
                ak / k.log10()
            }
            InternalIndex::Silhouette => silhouette(solution, unit),
            InternalIndex::CalinskiHarabasz => calinski_harabasz(solution, unit),
        }
    }
}

impl std::fmt::Display for InternalIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Mean silhouette coefficient with cosine distance `1 − cos`.
/// Singleton clusters contribute 0 (standard convention).
///
/// Per-object contributions are independent given the pairwise
/// similarities, so they are computed in parallel over a shared
/// [`crate::similarity::SimMatrix`] and summed serially in index order —
/// the result is bit-identical at any thread count.
fn silhouette(solution: &ClusterSolution, unit: &[SparseVector]) -> f64 {
    let n = unit.len();
    if n == 0 || solution.k() < 2 {
        return 0.0;
    }
    let sizes = solution.sizes();
    let sim = crate::similarity::similarity_matrix(unit);
    let contributions: Vec<f64> = boe_par::par_map_indexed_min(n, 64, |i| {
        let own = solution.assignment(i);
        if sizes[own] < 2 {
            return 0.0; // silhouette of a singleton is 0
        }
        // Mean distance to own cluster (excluding self) and to the nearest
        // other cluster.
        let mut sums = vec![0.0; solution.k()];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[solution.assignment(j)] += 1.0 - sim.get(i, j);
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..solution.k())
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            (b - a) / a.max(b).max(1e-12)
        } else {
            0.0
        }
    });
    contributions.into_iter().sum::<f64>() / n as f64
}

/// Calinski–Harabasz pseudo-F over unit vectors, computed from composite
/// identities: `WSS_i = n_i − ||D_i||²/n_i`, `BSS = Σ ||D_i||²/n_i −
/// ||D||²/N`.
fn calinski_harabasz(solution: &ClusterSolution, unit: &[SparseVector]) -> f64 {
    let n = unit.len() as f64;
    let k = solution.k() as f64;
    if solution.k() < 2 || unit.len() <= solution.k() {
        return 0.0;
    }
    let comps = solution.composites(unit);
    let sizes = solution.sizes();
    let total = SparseVector::sum_of(&comps);
    let mut wss = 0.0;
    let mut sum_sq_over_n = 0.0;
    for (d, &sz) in comps.iter().zip(&sizes) {
        let ni = sz as f64;
        let sq = d.dot(d);
        wss += ni - sq / ni;
        sum_sq_over_n += sq / ni;
    }
    let bss = sum_sq_over_n - total.dot(&total) / n;
    if wss.abs() < 1e-12 {
        return bss * 1e12;
    }
    (bss / (k - 1.0)) / (wss / (n - k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).normalized()
    }

    /// Two clean blobs (4 + 4), plus helpers to build partitions.
    fn two_blobs() -> Vec<SparseVector> {
        let mut vs = Vec::new();
        for c in 0..2u32 {
            for i in 0..4u32 {
                vs.push(unit(&[(c * 100, 10.0), (c * 100 + 1 + i, 1.0)]));
            }
        }
        vs
    }

    fn good_partition() -> ClusterSolution {
        ClusterSolution::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2)
    }

    fn bad_partition() -> ClusterSolution {
        ClusterSolution::new(vec![0, 1, 0, 1, 0, 1, 0, 1], 2)
    }

    #[test]
    fn ak_prefers_good_partition() {
        let vs = two_blobs();
        assert!(
            InternalIndex::Ak.score(&good_partition(), &vs)
                > InternalIndex::Ak.score(&bad_partition(), &vs)
        );
    }

    #[test]
    fn bk_is_lower_for_good_partition() {
        let vs = two_blobs();
        assert!(
            InternalIndex::Bk.score(&good_partition(), &vs)
                < InternalIndex::Bk.score(&bad_partition(), &vs)
        );
        assert!(!InternalIndex::Bk.maximize());
    }

    #[test]
    fn ck_ek_fk_prefer_good_partition() {
        let vs = two_blobs();
        for idx in [InternalIndex::Ck, InternalIndex::Ek, InternalIndex::Fk] {
            assert!(
                idx.score(&good_partition(), &vs) > idx.score(&bad_partition(), &vs),
                "{idx}"
            );
        }
    }

    #[test]
    fn fk_is_ak_over_log10k() {
        let vs = two_blobs();
        let sol = good_partition();
        let ak = InternalIndex::Ak.score(&sol, &vs);
        let fk = InternalIndex::Fk.score(&sol, &vs);
        assert!((fk - ak / 2.0f64.log10()).abs() < 1e-12);
    }

    #[test]
    fn fk_is_worst_possible_for_k1() {
        let vs = two_blobs();
        let sol = ClusterSolution::new(vec![0; 8], 1);
        // Undefined in the paper (log10(1) = 0); must lose every sweep
        // against a valid k instead of panicking.
        assert_eq!(InternalIndex::Fk.score(&sol, &vs), f64::NEG_INFINITY);
    }

    #[test]
    fn scores_are_never_nan_on_zero_vectors() {
        // All-zero context vectors drive every similarity to 0/0 territory;
        // scores must stay comparable (non-NaN) for argmax sweeps.
        let vs = vec![SparseVector::new(); 4];
        let sol = ClusterSolution::new(vec![0, 0, 1, 1], 2);
        for index in InternalIndex::ALL {
            let s = index.score(&sol, &vs);
            assert!(!s.is_nan(), "{index}: NaN leaked");
        }
    }

    #[test]
    fn silhouette_in_range_and_prefers_good() {
        let vs = two_blobs();
        let g = InternalIndex::Silhouette.score(&good_partition(), &vs);
        let b = InternalIndex::Silhouette.score(&bad_partition(), &vs);
        assert!((-1.0..=1.0).contains(&g));
        assert!(g > b);
        assert!(g > 0.5, "clean blobs should have high silhouette: {g}");
    }

    #[test]
    fn calinski_harabasz_prefers_good() {
        let vs = two_blobs();
        let g = InternalIndex::CalinskiHarabasz.score(&good_partition(), &vs);
        let b = InternalIndex::CalinskiHarabasz.score(&bad_partition(), &vs);
        assert!(g > b);
        assert!(g > 0.0);
    }

    #[test]
    fn ek_handles_perfect_separation() {
        // Orthogonal blobs ⇒ ESIM sums to 0 ⇒ huge but finite score.
        let vs = vec![
            unit(&[(0, 1.0)]),
            unit(&[(0, 1.0)]),
            unit(&[(5, 1.0)]),
            unit(&[(5, 1.0)]),
        ];
        let sol = ClusterSolution::new(vec![0, 0, 1, 1], 2);
        let s = InternalIndex::Ek.score(&sol, &vs);
        assert!(s.is_finite());
        assert!(s > 1e6);
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(InternalIndex::Fk.name(), "max(fk)");
        assert_eq!(InternalIndex::Bk.name(), "min(bk)");
        assert_eq!(InternalIndex::PAPER.len(), 5);
        assert_eq!(InternalIndex::ALL.len(), 7);
    }
}
