//! UPGMA agglomerative clustering — the `agglo` method.
//!
//! Average-linkage merging via Lance–Williams updates on a similarity
//! matrix: start from singletons, repeatedly merge the most similar pair,
//! stop at `k` clusters. O(n²) memory, O(n³) worst-case time — fine for
//! the context-set sizes of Step III (hundreds of objects).

use crate::similarity::similarity_matrix;
use crate::solution::ClusterSolution;
use boe_corpus::SparseVector;

/// Cluster unit vectors into `k` clusters by UPGMA.
pub fn upgma(unit: &[SparseVector], k: usize) -> ClusterSolution {
    let n = unit.len();
    assert!(k >= 1 && k <= n);
    if k == n {
        return ClusterSolution::new((0..n).collect(), n);
    }
    let mut sim = similarity_matrix(unit);
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Union-find-ish: representative per original object.
    let mut rep: Vec<usize> = (0..n).collect();
    let mut clusters = n;
    while clusters > k {
        // Most similar active pair (lowest indices win ties).
        let mut best = None;
        let mut best_s = f64::NEG_INFINITY;
        for (i, &ai) in active.iter().enumerate() {
            if !ai {
                continue;
            }
            for (j, &aj) in active.iter().enumerate().skip(i + 1) {
                if !aj {
                    continue;
                }
                let s = sim.get(i, j);
                if s > best_s {
                    best_s = s;
                    best = Some((i, j));
                }
            }
        }
        let (a, b) = best.expect("clusters > k >= 1 implies a pair");
        // Lance–Williams average linkage: s(a∪b, x) =
        // (|a| s(a,x) + |b| s(b,x)) / (|a| + |b|).
        let (na, nb) = (size[a] as f64, size[b] as f64);
        for (x, &ax) in active.iter().enumerate() {
            if !ax || x == a || x == b {
                continue;
            }
            let merged = (na * sim.get(a, x) + nb * sim.get(b, x)) / (na + nb);
            sim.set_sym(a, x, merged);
        }
        active[b] = false;
        size[a] += size[b];
        for r in rep.iter_mut() {
            if *r == b {
                *r = a;
            }
        }
        clusters -= 1;
    }
    // Densify representative labels.
    let mut label_of = vec![usize::MAX; n];
    let mut next = 0usize;
    let assignments: Vec<usize> = rep
        .iter()
        .map(|&r| {
            if label_of[r] == usize::MAX {
                label_of[r] = next;
                next += 1;
            }
            label_of[r]
        })
        .collect();
    ClusterSolution::new(assignments, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize) -> (Vec<SparseVector>, Vec<usize>) {
        let mut vs = Vec::new();
        let mut gold = Vec::new();
        for c in 0..k as u32 {
            for i in 0..per as u32 {
                let v = SparseVector::from_pairs([(c * 100, 10.0), (c * 100 + 1 + i, 1.0)]);
                vs.push(v.normalized());
                gold.push(c as usize);
            }
        }
        (vs, gold)
    }

    fn rand_index(a: &[usize], b: &[usize]) -> f64 {
        let n = a.len();
        let (mut agree, mut total) = (0, 0);
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if (a[i] == a[j]) == (b[i] == b[j]) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_blobs_exactly() {
        let (vs, gold) = blobs(6, 3);
        let sol = upgma(&vs, 3);
        assert_eq!(rand_index(sol.assignments(), &gold), 1.0);
    }

    #[test]
    fn merge_order_is_similarity_driven() {
        // Two near-identical vectors and one orthogonal: k=2 must pair the
        // similar ones.
        let vs = vec![
            SparseVector::from_pairs([(0, 1.0), (1, 0.1)]).normalized(),
            SparseVector::from_pairs([(0, 1.0), (2, 0.1)]).normalized(),
            SparseVector::from_pairs([(9, 1.0)]).normalized(),
        ];
        let sol = upgma(&vs, 2);
        assert_eq!(sol.assignment(0), sol.assignment(1));
        assert_ne!(sol.assignment(0), sol.assignment(2));
    }

    #[test]
    fn k_one_merges_everything() {
        let (vs, _) = blobs(4, 2);
        let sol = upgma(&vs, 1);
        assert_eq!(sol.sizes(), vec![8]);
    }

    #[test]
    fn k_equals_n() {
        let (vs, _) = blobs(2, 2);
        let sol = upgma(&vs, 4);
        assert_eq!(sol.sizes(), vec![1; 4]);
    }

    #[test]
    fn deterministic() {
        let (vs, _) = blobs(5, 3);
        assert_eq!(upgma(&vs, 3).assignments(), upgma(&vs, 3).assignments());
    }

    #[test]
    fn labels_are_dense() {
        let (vs, _) = blobs(4, 3);
        let sol = upgma(&vs, 5);
        let mut labels: Vec<usize> = sol.assignments().to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }
}
