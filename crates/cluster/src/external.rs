//! External clustering-quality indexes.
//!
//! The paper (§2(III)) distinguishes two kinds of quality indexes:
//! *external* ones, which compare a solution against pre-labelled data,
//! and *internal* ones, which it builds its contribution on. The
//! experiments use external indexes to sanity-check the clustering
//! substrate against the synthetic gold senses: purity, normalized
//! mutual information (NMI) and the adjusted Rand index (ARI).

use crate::solution::ClusterSolution;

/// Contingency counts between a solution and gold labels.
fn contingency(solution: &ClusterSolution, gold: &[usize]) -> (Vec<Vec<usize>>, usize, usize) {
    assert_eq!(solution.len(), gold.len(), "label length mismatch");
    let k = solution.k();
    let g = gold.iter().copied().max().map_or(0, |m| m + 1);
    let mut table = vec![vec![0usize; g]; k];
    for (i, &gl) in gold.iter().enumerate() {
        table[solution.assignment(i)][gl] += 1;
    }
    (table, k, g)
}

/// Purity: fraction of objects belonging to their cluster's majority
/// gold class. In (0, 1]; 1 iff every cluster is gold-pure.
pub fn purity(solution: &ClusterSolution, gold: &[usize]) -> f64 {
    if gold.is_empty() {
        return 0.0;
    }
    let (table, _, _) = contingency(solution, gold);
    let majority: usize = table
        .iter()
        .map(|row| row.iter().copied().max().unwrap_or(0))
        .sum();
    majority as f64 / gold.len() as f64
}

/// Normalized mutual information (arithmetic normalization):
/// `NMI = 2 I(C;G) / (H(C) + H(G))`. In [0, 1]; 0 for independent
/// labellings, 1 for identical partitions. Degenerate single-cluster /
/// single-class cases return 0.
pub fn nmi(solution: &ClusterSolution, gold: &[usize]) -> f64 {
    let n = gold.len();
    if n == 0 {
        return 0.0;
    }
    let (table, k, g) = contingency(solution, gold);
    let nf = n as f64;
    let row_sums: Vec<f64> = table
        .iter()
        .map(|r| r.iter().sum::<usize>() as f64)
        .collect();
    let mut col_sums = vec![0.0f64; g];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            col_sums[c] += v as f64;
        }
    }
    let mut mi = 0.0;
    for i in 0..k {
        for j in 0..g {
            let nij = table[i][j] as f64;
            if nij > 0.0 {
                mi += (nij / nf) * ((nij * nf) / (row_sums[i] * col_sums[j])).ln();
            }
        }
    }
    let h = |sums: &[f64]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| {
                let p = s / nf;
                -p * p.ln()
            })
            .sum()
    };
    let hc = h(&row_sums);
    let hg = h(&col_sums);
    if hc + hg <= 0.0 {
        0.0
    } else {
        (2.0 * mi / (hc + hg)).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index: pair-counting agreement corrected for chance.
/// 1 for identical partitions, ~0 for random ones (can be negative).
pub fn adjusted_rand(solution: &ClusterSolution, gold: &[usize]) -> f64 {
    let n = gold.len();
    if n < 2 {
        return 0.0;
    }
    let (table, _, g) = contingency(solution, gold);
    let choose2 = |x: usize| (x * x.saturating_sub(1)) as f64 / 2.0;
    let sum_ij: f64 = table.iter().flatten().map(|&v| choose2(v)).sum();
    let sum_i: f64 = table.iter().map(|r| choose2(r.iter().sum::<usize>())).sum();
    let mut col_sums = vec![0usize; g];
    for row in &table {
        for (c, &v) in row.iter().enumerate() {
            col_sums[c] += v;
        }
    }
    let sum_j: f64 = col_sums.iter().map(|&v| choose2(v)).sum();
    let total = choose2(n);
    let expected = sum_i * sum_j / total;
    let max_index = (sum_i + sum_j) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return if (sum_ij - expected).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sol(labels: &[usize], k: usize) -> ClusterSolution {
        ClusterSolution::new(labels.to_vec(), k)
    }

    #[test]
    fn perfect_partition_scores_one() {
        let s = sol(&[0, 0, 1, 1, 2, 2], 3);
        let gold = [0, 0, 1, 1, 2, 2];
        assert!((purity(&s, &gold) - 1.0).abs() < 1e-12);
        assert!((nmi(&s, &gold) - 1.0).abs() < 1e-9);
        assert!((adjusted_rand(&s, &gold) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let s = sol(&[2, 2, 0, 0, 1, 1], 3);
        let gold = [0, 0, 1, 1, 2, 2];
        assert!((purity(&s, &gold) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand(&s, &gold) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_clusters_score_lower() {
        let good = sol(&[0, 0, 1, 1], 2);
        let bad = sol(&[0, 1, 0, 1], 2);
        let gold = [0, 0, 1, 1];
        assert!(purity(&good, &gold) > purity(&bad, &gold));
        assert!(nmi(&good, &gold) > nmi(&bad, &gold));
        assert!(adjusted_rand(&good, &gold) > adjusted_rand(&bad, &gold));
        // Anti-correlated 2x2 partition: ARI should be at or below 0.
        assert!(adjusted_rand(&bad, &gold) <= 0.0 + 1e-12);
    }

    #[test]
    fn single_cluster_degenerates_gracefully() {
        let s = sol(&[0, 0, 0, 0], 1);
        let gold = [0, 0, 1, 1];
        assert!((purity(&s, &gold) - 0.5).abs() < 1e-12);
        assert_eq!(nmi(&s, &gold), 0.0);
        assert!(adjusted_rand(&s, &gold).abs() < 1e-12);
    }

    #[test]
    fn purity_matches_hand_computation() {
        // Clusters: {0,0,1}, {1,1}: majorities 2 + 2 of 5.
        let s = sol(&[0, 0, 0, 1, 1], 2);
        let gold = [0, 0, 1, 1, 1];
        assert!((purity(&s, &gold) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let s = sol(&[0, 1], 2);
        let _ = purity(&s, &[0]);
    }

    #[test]
    fn empty_gold_is_zero() {
        // A solution cannot be empty (invariant), so test via len-1 ARI.
        let s = sol(&[0], 1);
        assert_eq!(adjusted_rand(&s, &[0]), 0.0);
    }
}
