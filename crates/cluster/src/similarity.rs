//! Similarity helpers over unit-normalized vectors.
//!
//! For unit vectors, cosine reduces to the dot product, and sums of
//! pairwise similarities reduce to composite-vector norms:
//! `Σ_{x,y ∈ S} x·y = ||Σ_{x∈S} x||²` — the identity CLUTO's criterion
//! functions and ISIM/ESIM exploit. Every function here assumes unit
//! inputs (the [`crate::Algorithm`] entry point normalizes once).

use boe_corpus::SparseVector;

/// A dense symmetric similarity matrix in one flat row-major buffer —
/// one allocation instead of `n` heap rows, cache-friendly row scans.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    /// An n×n matrix of zeros.
    pub fn zeros(n: usize) -> Self {
        SimMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set entry `(i, j)` (one triangle only; use [`Self::set_sym`] to
    /// keep the matrix symmetric).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Set entries `(i, j)` and `(j, i)`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.set(i, j, v);
        self.set(j, i, v);
    }

    /// Row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

/// Full pairwise cosine matrix (n×n, symmetric, diagonal = 1 for nonzero
/// vectors). The upper triangle is computed in parallel over **row
/// ranges** balanced by cell count (row `i` holds `n-1-i` cells, so
/// per-row chunking would give early workers most of the work and pay
/// one task-dispatch per row); each range returns one flat buffer and
/// the ranges are stitched back in order. Every entry is an independent
/// dot product, so the matrix is bit-identical at any thread count.
pub fn similarity_matrix(unit: &[SparseVector]) -> SimMatrix {
    let n = unit.len();
    let ranges = row_ranges(n, boe_par::threads());
    let chunks: Vec<Vec<f64>> = boe_par::par_map_min(&ranges, 2, |&(lo, hi)| {
        let mut buf = Vec::new();
        for i in lo..hi {
            buf.extend(((i + 1)..n).map(|j| unit[i].dot(&unit[j])));
        }
        buf
    });
    let mut m = SimMatrix::zeros(n);
    for (i, u) in unit.iter().enumerate() {
        m.set(i, i, if u.is_empty() { 0.0 } else { 1.0 });
    }
    let mut row = 0usize;
    for (&(lo, hi), buf) in ranges.iter().zip(&chunks) {
        debug_assert_eq!(row, lo);
        let mut at = 0usize;
        for i in lo..hi {
            for j in (i + 1)..n {
                m.set_sym(i, j, buf[at]);
                at += 1;
            }
        }
        row = hi;
    }
    // Cell-free trailing rows may be absent from `ranges`; their
    // diagonal was already set above.
    debug_assert!(row <= n);
    m
}

/// Split rows `0..n` of an upper-triangular build into at most `workers`
/// contiguous ranges with approximately equal **cell counts** (row `i`
/// contributes `n-1-i` cells). Ranges cover every row with work; empty
/// trailing rows may be left out (they hold no off-diagonal cells).
fn row_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let total: usize = n.saturating_sub(1) * n / 2;
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n.max(1));
    let target = total.div_ceil(workers);
    let mut ranges = Vec::with_capacity(workers);
    let mut lo = 0usize;
    let mut acc = 0usize;
    for i in 0..n {
        acc += n - 1 - i;
        if acc >= target || i + 1 == n {
            if acc > 0 {
                ranges.push((lo, i + 1));
            }
            lo = i + 1;
            acc = 0;
        }
    }
    ranges
}

/// Average pairwise similarity among all *ordered distinct* pairs in a
/// set given its composite vector and size; 1.0 for singletons by
/// convention (a single object is perfectly self-similar).
pub fn avg_pairwise_from_composite(composite: &SparseVector, n: usize) -> f64 {
    assert!(n >= 1, "empty cluster");
    if n == 1 {
        return 1.0;
    }
    let sq = composite.dot(composite);
    // ||Σx||² = n (unit self-sims) + Σ_{i≠j} x_i·x_j.
    ((sq - n as f64) / (n as f64 * (n as f64 - 1.0))).clamp(-1.0, 1.0)
}

/// The I2 criterion value of a partition: `Σ_k ||composite_k||`
/// (what `direct`, `rb` and `rbr` maximize).
pub fn i2(composites: &[SparseVector]) -> f64 {
    composites.iter().map(SparseVector::norm).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).normalized()
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let vs = vec![
            unit(&[(0, 1.0)]),
            unit(&[(0, 1.0), (1, 1.0)]),
            unit(&[(1, 1.0)]),
        ];
        let m = similarity_matrix(&vs);
        assert_eq!(m.n(), 3);
        for i in 0..m.n() {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for (j, &v) in m.row(i).iter().enumerate() {
                assert!((v - m.get(j, i)).abs() < 1e-12);
            }
        }
        assert!(m.get(0, 1) > 0.0 && m.get(0, 2).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_identical_at_any_thread_count() {
        let vs: Vec<SparseVector> = (0..40u32)
            .map(|i| unit(&[(i % 7, 1.0 + f64::from(i)), (i % 3, 0.5)]))
            .collect();
        boe_par::set_threads(Some(1));
        let serial = similarity_matrix(&vs);
        boe_par::set_threads(Some(8));
        let parallel = similarity_matrix(&vs);
        boe_par::set_threads(None);
        assert_eq!(serial, parallel, "bit-identical across thread counts");
    }

    #[test]
    fn zero_vector_has_zero_diagonal() {
        let vs = vec![unit(&[(0, 1.0)]), SparseVector::new()];
        let m = similarity_matrix(&vs);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn composite_identity_matches_direct_sum() {
        let vs = vec![
            unit(&[(0, 1.0)]),
            unit(&[(0, 1.0), (1, 1.0)]),
            unit(&[(1, 1.0)]),
        ];
        let composite = SparseVector::sum_of(&vs);
        let avg = avg_pairwise_from_composite(&composite, 3);
        // Direct computation.
        let mut total = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    total += vs[i].dot(&vs[j]);
                }
            }
        }
        assert!((avg - total / 6.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_avg_is_one() {
        let v = unit(&[(0, 2.0)]);
        assert_eq!(avg_pairwise_from_composite(&v, 1), 1.0);
    }

    #[test]
    fn i2_of_tight_clusters_exceeds_split() {
        let a = vec![unit(&[(0, 1.0)]), unit(&[(0, 1.0)])];
        let b = vec![unit(&[(1, 1.0)]), unit(&[(1, 1.0)])];
        let good = [SparseVector::sum_of(&a), SparseVector::sum_of(&b)];
        let mixed = [
            SparseVector::sum_of(&[a[0].clone(), b[0].clone()]),
            SparseVector::sum_of(&[a[1].clone(), b[1].clone()]),
        ];
        assert!(i2(&good) > i2(&mixed));
    }
}
