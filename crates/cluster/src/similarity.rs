//! Similarity helpers over unit-normalized vectors.
//!
//! For unit vectors, cosine reduces to the dot product, and sums of
//! pairwise similarities reduce to composite-vector norms:
//! `Σ_{x,y ∈ S} x·y = ||Σ_{x∈S} x||²` — the identity CLUTO's criterion
//! functions and ISIM/ESIM exploit. Every function here assumes unit
//! inputs (the [`crate::Algorithm`] entry point normalizes once).

use boe_corpus::SparseVector;

/// Full pairwise cosine matrix (n×n, symmetric, diagonal = 1 for nonzero
/// vectors).
pub fn similarity_matrix(unit: &[SparseVector]) -> Vec<Vec<f64>> {
    let n = unit.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = if unit[i].is_empty() { 0.0 } else { 1.0 };
        for j in (i + 1)..n {
            let s = unit[i].dot(&unit[j]);
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

/// Average pairwise similarity among all *ordered distinct* pairs in a
/// set given its composite vector and size; 1.0 for singletons by
/// convention (a single object is perfectly self-similar).
pub fn avg_pairwise_from_composite(composite: &SparseVector, n: usize) -> f64 {
    assert!(n >= 1, "empty cluster");
    if n == 1 {
        return 1.0;
    }
    let sq = composite.dot(composite);
    // ||Σx||² = n (unit self-sims) + Σ_{i≠j} x_i·x_j.
    ((sq - n as f64) / (n as f64 * (n as f64 - 1.0))).clamp(-1.0, 1.0)
}

/// The I2 criterion value of a partition: `Σ_k ||composite_k||`
/// (what `direct`, `rb` and `rbr` maximize).
pub fn i2(composites: &[SparseVector]) -> f64 {
    composites.iter().map(SparseVector::norm).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied()).normalized()
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let vs = vec![
            unit(&[(0, 1.0)]),
            unit(&[(0, 1.0), (1, 1.0)]),
            unit(&[(1, 1.0)]),
        ];
        let m = similarity_matrix(&vs);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        assert!(m[0][1] > 0.0 && m[0][2].abs() < 1e-12);
    }

    #[test]
    fn composite_identity_matches_direct_sum() {
        let vs = vec![
            unit(&[(0, 1.0)]),
            unit(&[(0, 1.0), (1, 1.0)]),
            unit(&[(1, 1.0)]),
        ];
        let composite = SparseVector::sum_of(&vs);
        let avg = avg_pairwise_from_composite(&composite, 3);
        // Direct computation.
        let mut total = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    total += vs[i].dot(&vs[j]);
                }
            }
        }
        assert!((avg - total / 6.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_avg_is_one() {
        let v = unit(&[(0, 2.0)]);
        assert_eq!(avg_pairwise_from_composite(&v, 1), 1.0);
    }

    #[test]
    fn i2_of_tight_clusters_exceeds_split() {
        let a = vec![unit(&[(0, 1.0)]), unit(&[(0, 1.0)])];
        let b = vec![unit(&[(1, 1.0)]), unit(&[(1, 1.0)])];
        let good = [SparseVector::sum_of(&a), SparseVector::sum_of(&b)];
        let mixed = [
            SparseVector::sum_of(&[a[0].clone(), b[0].clone()]),
            SparseVector::sum_of(&[a[1].clone(), b[1].clone()]),
        ];
        assert!(i2(&good) > i2(&mixed));
    }
}
