//! Property tests for the clustering substrate.
//!
//! Driven by the workspace's own deterministic PRNG (no external
//! dependencies); each test sweeps seeded random vector collections.

use boe_cluster::external::{adjusted_rand, nmi, purity};
use boe_cluster::isim::ClusterStats;
use boe_cluster::kpredict::{predict_k, KPredictConfig};
use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
use boe_corpus::SparseVector;
use boe_rng::StdRng;

const CASES: usize = 50;

fn rand_vectors(rng: &mut StdRng) -> Vec<SparseVector> {
    let n = rng.gen_range(3usize..20);
    (0..n)
        .map(|_| {
            let nnz = rng.gen_range(1usize..6);
            let pairs: Vec<(u32, f64)> = (0..nnz)
                .map(|_| (rng.gen_range(0u32..24), 0.1 + rng.gen::<f64>() * 2.9))
                .collect();
            SparseVector::from_pairs(pairs)
        })
        .collect()
}

#[test]
fn every_algorithm_yields_a_valid_partition() {
    let mut rng = StdRng::seed_from_u64(40);
    for _ in 0..CASES {
        let vs = rand_vectors(&mut rng);
        let k = rng.gen_range(1usize..5).min(vs.len());
        let seed = rng.gen_range(0u64..20);
        for alg in Algorithm::ALL {
            let sol = alg.cluster(&vs, k, seed);
            assert_eq!(sol.k(), k, "{alg}");
            assert_eq!(sol.len(), vs.len());
            assert!(sol.sizes().iter().all(|&s| s > 0), "{alg}");
        }
    }
}

#[test]
fn isim_esim_are_bounded() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..CASES {
        let vs = rand_vectors(&mut rng);
        let k = rng.gen_range(1usize..4).min(vs.len());
        let seed = rng.gen_range(0u64..10);
        let unit: Vec<SparseVector> = vs.iter().map(SparseVector::normalized).collect();
        let sol = Algorithm::Direct.cluster(&vs, k, seed);
        let st = ClusterStats::compute(&sol, &unit);
        for (&i, &e) in st.isim.iter().zip(&st.esim) {
            assert!((-1.0..=1.0).contains(&i), "ISIM {i}");
            assert!((-1.0..=1.0).contains(&e), "ESIM {e}");
        }
        assert_eq!(st.k(), k);
    }
}

#[test]
fn internal_indexes_are_finite() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..CASES {
        let vs = rand_vectors(&mut rng);
        if vs.len() < 2 {
            continue;
        }
        let seed = rng.gen_range(0u64..10);
        let unit: Vec<SparseVector> = vs.iter().map(SparseVector::normalized).collect();
        let sol = Algorithm::Rbr.cluster(&vs, 2, seed);
        for index in InternalIndex::ALL {
            let s = index.score(&sol, &unit);
            assert!(s.is_finite(), "{index}: {s}");
        }
    }
}

#[test]
fn predict_k_respects_the_range() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..CASES {
        let vs = rand_vectors(&mut rng);
        let cfg = KPredictConfig {
            seed: rng.gen_range(0u64..10),
            ..Default::default()
        };
        if let Some(pred) = predict_k(&vs, cfg) {
            assert!((2..=5).contains(&pred.k));
            assert!(pred.k <= vs.len());
            assert!(!pred.scores.is_empty());
        } else {
            assert!(vs.len() < 2);
        }
    }
}

#[test]
fn external_indexes_bounds_and_identity() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..24);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..4)).collect();
        // Build a solution identical to gold (relabelled densely).
        let mut map = std::collections::HashMap::new();
        let mut next = 0usize;
        let dense: Vec<usize> = labels
            .iter()
            .map(|&l| {
                *map.entry(l).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect();
        let k = next.max(1);
        let sol = ClusterSolution::new(dense.clone(), k);
        assert!((purity(&sol, &dense) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand(&sol, &dense) - 1.0).abs() < 1e-12 || k == 1 || dense.len() < 2);
        let nmi_v = nmi(&sol, &dense);
        assert!((0.0..=1.0).contains(&nmi_v));
    }
}
