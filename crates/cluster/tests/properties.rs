//! Property tests for the clustering substrate.

use boe_cluster::external::{adjusted_rand, nmi, purity};
use boe_cluster::isim::ClusterStats;
use boe_cluster::kpredict::{predict_k, KPredictConfig};
use boe_cluster::{Algorithm, ClusterSolution, InternalIndex};
use boe_corpus::SparseVector;
use proptest::prelude::*;

fn vectors_strategy() -> impl Strategy<Value = Vec<SparseVector>> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..24, 0.1f64..3.0), 1..6),
        3..20,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(SparseVector::from_pairs)
            .collect()
    })
}

proptest! {
    #[test]
    fn every_algorithm_yields_a_valid_partition(vs in vectors_strategy(), k in 1usize..5, seed in 0u64..20) {
        let k = k.min(vs.len());
        for alg in Algorithm::ALL {
            let sol = alg.cluster(&vs, k, seed);
            prop_assert_eq!(sol.k(), k, "{}", alg);
            prop_assert_eq!(sol.len(), vs.len());
            prop_assert!(sol.sizes().iter().all(|&s| s > 0), "{}", alg);
        }
    }

    #[test]
    fn isim_esim_are_bounded(vs in vectors_strategy(), k in 1usize..4, seed in 0u64..10) {
        let k = k.min(vs.len());
        let unit: Vec<SparseVector> = vs.iter().map(SparseVector::normalized).collect();
        let sol = Algorithm::Direct.cluster(&vs, k, seed);
        let st = ClusterStats::compute(&sol, &unit);
        for (&i, &e) in st.isim.iter().zip(&st.esim) {
            prop_assert!((-1.0..=1.0).contains(&i), "ISIM {i}");
            prop_assert!((-1.0..=1.0).contains(&e), "ESIM {e}");
        }
        prop_assert_eq!(st.k(), k);
    }

    #[test]
    fn internal_indexes_are_finite(vs in vectors_strategy(), seed in 0u64..10) {
        if vs.len() < 2 {
            return Ok(());
        }
        let unit: Vec<SparseVector> = vs.iter().map(SparseVector::normalized).collect();
        let sol = Algorithm::Rbr.cluster(&vs, 2, seed);
        for index in InternalIndex::ALL {
            let s = index.score(&sol, &unit);
            prop_assert!(s.is_finite(), "{index}: {s}");
        }
    }

    #[test]
    fn predict_k_respects_the_range(vs in vectors_strategy(), seed in 0u64..10) {
        let cfg = KPredictConfig {
            seed,
            ..Default::default()
        };
        if let Some(pred) = predict_k(&vs, cfg) {
            prop_assert!((2..=5).contains(&pred.k));
            prop_assert!(pred.k <= vs.len());
            prop_assert!(!pred.scores.is_empty());
        } else {
            prop_assert!(vs.len() < 2);
        }
    }

    #[test]
    fn external_indexes_bounds_and_identity(labels in proptest::collection::vec(0usize..4, 2..24)) {
        // Build a solution identical to gold (relabelled densely).
        let mut map = std::collections::HashMap::new();
        let mut next = 0usize;
        let dense: Vec<usize> = labels
            .iter()
            .map(|&l| *map.entry(l).or_insert_with(|| { let v = next; next += 1; v }))
            .collect();
        let k = next.max(1);
        let sol = ClusterSolution::new(dense.clone(), k);
        prop_assert!((purity(&sol, &dense) - 1.0).abs() < 1e-12);
        prop_assert!((adjusted_rand(&sol, &dense) - 1.0).abs() < 1e-12 || k == 1 || dense.len() < 2);
        let n = nmi(&sol, &dense);
        prop_assert!((0.0..=1.0).contains(&n));
    }
}
